// Tests for the extension features: Aeolus-style selective dropping, the
// unscheduled packet tag, and the Jain fairness metric.
#include <gtest/gtest.h>

#include "net/queue.hpp"
#include "stats/summary.hpp"
#include "test_rig.hpp"

using namespace amrt;
using namespace amrt::sim::literals;
using amrt::testutil::DumbbellRig;
using amrt::testutil::RigOptions;

namespace {
net::Packet mk(std::uint32_t seq, bool unscheduled) {
  net::Packet p;
  p.flow = 1;
  p.seq = seq;
  p.type = net::PacketType::kData;
  p.wire_bytes = net::kMtuBytes;
  p.payload_bytes = net::kMssBytes;
  p.unscheduled = unscheduled;
  return p;
}
}  // namespace

TEST(SelectiveDrop, UnscheduledDroppedFirstWhenFull) {
  net::SelectiveDropQueue q{2};
  q.enqueue(mk(0, true));
  q.enqueue(mk(1, true));
  q.enqueue(mk(2, true));  // full of blind packets: incoming blind drops
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.data_pkts(), 2u);
}

TEST(SelectiveDrop, ScheduledEvictsYoungestUnscheduled) {
  net::SelectiveDropQueue q{2};
  q.enqueue(mk(0, true));
  q.enqueue(mk(1, true));
  q.enqueue(mk(2, false));  // scheduled arrival evicts blind seq 1
  EXPECT_EQ(q.stats().dropped, 1u);
  auto a = q.dequeue();
  auto b = q.dequeue();
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->seq, 0u);
  EXPECT_EQ(b->seq, 2u);
  EXPECT_FALSE(b->unscheduled);
}

TEST(SelectiveDrop, AllScheduledFallsBackToTailDrop) {
  net::SelectiveDropQueue q{2};
  q.enqueue(mk(0, false));
  q.enqueue(mk(1, false));
  q.enqueue(mk(2, false));
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.dequeue()->seq, 0u);  // FIFO preserved
}

TEST(SelectiveDrop, ControlBandUnaffected) {
  net::SelectiveDropQueue q{1};
  q.enqueue(mk(0, false));
  net::Packet grant;
  grant.type = net::PacketType::kGrant;
  grant.wire_bytes = net::kCtrlBytes;
  q.enqueue(std::move(grant));
  EXPECT_EQ(q.dequeue()->type, net::PacketType::kGrant);
}

TEST(UnscheduledTag, FirstBdpTaggedRestNot) {
  RigOptions opt;
  opt.proto = transport::Protocol::kAmrt;
  DumbbellRig rig{opt};
  const auto bdp = rig.tcfg().bdp_packets();
  // A flow of 2 BDP: the first window is blind, the second grant-driven.
  rig.start_flow(1, 0, static_cast<std::uint64_t>(bdp) * 2 * net::kMssBytes);
  ASSERT_TRUE(rig.run_to_completion(1, 100_ms));
  // Indirect check: with a SelectiveDropQueue full of this flow's blind
  // burst, scheduled retransmissions would evict them — covered above; here
  // we assert completion still holds with selective drop enabled end-to-end.
  RigOptions sel;
  sel.proto = transport::Protocol::kAmrt;
  sel.queues.selective_drop = true;
  sel.queues.buffer_pkts = 8;
  sel.pairs = 3;
  DumbbellRig rig2{sel};
  for (int i = 0; i < 3; ++i) rig2.start_flow(static_cast<net::FlowId>(i + 1), i, 200'000);
  EXPECT_TRUE(rig2.run_to_completion(3, 1_s));
}

TEST(SelectiveDropEndToEnd, ProtectsScheduledTraffic) {
  // Under the same colliding load, selective drop must not lose *granted*
  // packets: drops concentrate on the blind first windows.
  auto run = [](bool selective) {
    RigOptions opt;
    opt.proto = transport::Protocol::kAmrt;
    opt.queues.selective_drop = selective;
    opt.queues.buffer_pkts = 8;
    opt.pairs = 4;
    DumbbellRig rig{opt};
    for (int i = 0; i < 4; ++i) rig.start_flow(static_cast<net::FlowId>(i + 1), i, 400'000);
    EXPECT_TRUE(rig.run_to_completion(4, 2_s));
    double worst = 0;
    for (const auto& r : rig.recorder().completed()) worst = std::max(worst, r.fct().to_millis());
    return worst;
  };
  const double droptail_worst = run(false);
  const double selective_worst = run(true);
  // Selective dropping should not make the tail worse; typically it helps
  // because granted retransmissions are never re-lost.
  EXPECT_LE(selective_worst, droptail_worst * 1.2);
}

TEST(JainFairness, PerfectlyFair) {
  EXPECT_DOUBLE_EQ(stats::jain_fairness({5, 5, 5, 5}), 1.0);
}

TEST(JainFairness, SingleHog) {
  EXPECT_NEAR(stats::jain_fairness({10, 0, 0, 0}), 0.25, 1e-12);
}

TEST(JainFairness, EdgeCases) {
  EXPECT_DOUBLE_EQ(stats::jain_fairness({}), 0.0);
  EXPECT_DOUBLE_EQ(stats::jain_fairness({0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(stats::jain_fairness({7}), 1.0);
}

TEST(JainFairness, MonotoneInImbalance) {
  EXPECT_GT(stats::jain_fairness({4, 6}), stats::jain_fairness({1, 9}));
}
