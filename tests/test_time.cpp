// Unit tests for the strong time/bandwidth types (src/sim/time.hpp).
#include <gtest/gtest.h>

#include "sim/time.hpp"

using namespace amrt::sim;
using namespace amrt::sim::literals;

TEST(Duration, FactoryUnitsAgree) {
  EXPECT_EQ(Duration::microseconds(1).ns(), 1000);
  EXPECT_EQ(Duration::milliseconds(1).ns(), 1'000'000);
  EXPECT_EQ(Duration::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(Duration::seconds(2), Duration::milliseconds(2000));
}

TEST(Duration, LiteralsMatchFactories) {
  EXPECT_EQ(5_us, Duration::microseconds(5));
  EXPECT_EQ(3_ms, Duration::milliseconds(3));
  EXPECT_EQ(1_s, Duration::seconds(1));
  EXPECT_EQ(250_ns, Duration::nanoseconds(250));
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ((2_us + 3_us).ns(), 5000);
  EXPECT_EQ((5_us - 3_us).ns(), 2000);
  EXPECT_EQ((2_us * 3).ns(), 6000);
  EXPECT_EQ((3 * 2_us).ns(), 6000);
  EXPECT_EQ((6_us / 3).ns(), 2000);
  EXPECT_DOUBLE_EQ(6_us / (2_us), 3.0);
  EXPECT_EQ(-(2_us), Duration::microseconds(-2));
}

TEST(Duration, CompoundAssignment) {
  Duration d = 1_us;
  d += 2_us;
  EXPECT_EQ(d, 3_us);
  d -= 1_us;
  EXPECT_EQ(d, 2_us);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(1_us, 2_us);
  EXPECT_GE(2_ms, 2000_us);
  EXPECT_EQ(Duration::zero().ns(), 0);
}

TEST(Duration, FromSecondsRounds) {
  EXPECT_EQ(Duration::from_seconds(1e-9).ns(), 1);
  EXPECT_EQ(Duration::from_seconds(1.5e-9).ns(), 2);  // rounds to nearest
  EXPECT_EQ(Duration::from_seconds(0.001), 1_ms);
}

TEST(Duration, ScaledByDouble) {
  EXPECT_EQ((10_us).scaled(0.5), 5_us);
  EXPECT_EQ((10_us).scaled(2.0), 20_us);
}

TEST(Duration, ConversionAccessors) {
  EXPECT_DOUBLE_EQ((1500_ns).to_micros(), 1.5);
  EXPECT_DOUBLE_EQ((2_ms).to_millis(), 2.0);
  EXPECT_DOUBLE_EQ((3_s).to_seconds(), 3.0);
}

TEST(Duration, StringFormat) {
  EXPECT_EQ((12_us).str(), "12.000us");
  EXPECT_EQ((500_ns).str(), "500ns");
  EXPECT_EQ((2_ms).str(), "2.000ms");
}

TEST(TimePoint, ArithmeticWithDurations) {
  const TimePoint t = TimePoint::from_ns(1000);
  EXPECT_EQ((t + 1_us).ns(), 2000);
  EXPECT_EQ((1_us + t).ns(), 2000);
  EXPECT_EQ((t - 500_ns).ns(), 500);
  EXPECT_EQ(TimePoint::from_ns(3000) - t, 2_us);
}

TEST(TimePoint, CompoundAdvance) {
  TimePoint t = TimePoint::zero();
  t += 5_us;
  EXPECT_EQ(t.ns(), 5000);
}

TEST(TimePoint, Ordering) {
  EXPECT_LT(TimePoint::zero(), TimePoint::from_ns(1));
  EXPECT_EQ(TimePoint::max().ns(), INT64_MAX);
}

TEST(Bandwidth, Factories) {
  EXPECT_EQ((10_gbps).bits_per_second(), 10'000'000'000LL);
  EXPECT_EQ((100_mbps).bits_per_second(), 100'000'000LL);
  EXPECT_DOUBLE_EQ((10_gbps).gbps_value(), 10.0);
}

TEST(Bandwidth, TxTimeExactAtTenGig) {
  // 1500B at 10Gbps = 1.2us exactly.
  EXPECT_EQ((10_gbps).tx_time(1500), 1200_ns);
  // 64B control packet: 51.2ns -> rounded up to 52ns.
  EXPECT_EQ((10_gbps).tx_time(64).ns(), 52);
}

TEST(Bandwidth, TxTimeAtOneGig) {
  EXPECT_EQ((1_gbps).tx_time(1500), 12'000_ns);
}

TEST(Bandwidth, TxTimeRoundsUp) {
  // 1 byte at 3 Gbps = 8/3 ns -> 3ns.
  EXPECT_EQ(Bandwidth::gbps(3).tx_time(1), 3_ns);
}

TEST(Bandwidth, BytesInWindow) {
  // 10Gbps for 1.2us = 1500 bytes.
  EXPECT_EQ((10_gbps).bytes_in(1200_ns), 1500);
  EXPECT_EQ((10_gbps).bytes_in(Duration::zero()), 0);
}

TEST(Bandwidth, RoundTripWithTxTime) {
  // bytes_in(tx_time(n)) == n for sizes whose wire time is a whole ns at
  // 10Gbps (1500B = 1200ns, 9000B = 7200ns). tx_time rounds up, so sizes
  // like 64B come back at most one byte high.
  for (std::int64_t n : {1500, 9000}) {
    EXPECT_EQ((10_gbps).bytes_in((10_gbps).tx_time(n)), n) << n;
  }
  EXPECT_LE((10_gbps).bytes_in((10_gbps).tx_time(64)), 65);
  EXPECT_GE((10_gbps).bytes_in((10_gbps).tx_time(64)), 64);
}

TEST(Bandwidth, ScalingOperators) {
  EXPECT_EQ((10_gbps) / 2, Bandwidth::gbps(5));
  EXPECT_EQ((10_gbps) * 2, Bandwidth::gbps(20));
}

TEST(Bandwidth, StringFormat) {
  EXPECT_EQ((10_gbps).str(), "10Gbps");
  EXPECT_EQ((100_mbps).str(), "100Mbps");
}
