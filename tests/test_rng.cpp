// Unit tests for the seeded random façade (src/sim/rng.hpp).
#include <gtest/gtest.h>

#include "sim/rng.hpp"

using amrt::sim::Rng;

TEST(Rng, SameSeedSameStream) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformStaysInRange) {
  Rng r{7};
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r{7};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == 0;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng r{11};
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.2);
}

TEST(Rng, BernoulliFrequency) {
  Rng r{13};
  int hits = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.03);
}

TEST(Rng, IndexCoversRange) {
  Rng r{17};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) ++counts[r.index(4)];
  for (int c : counts) EXPECT_GT(c, 800);
}

TEST(Rng, ForkIsIndependentButDeterministic) {
  Rng a{99};
  Rng fork1 = a.fork();
  Rng b{99};
  Rng fork2 = b.fork();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(fork1.uniform_int(0, 1000), fork2.uniform_int(0, 1000));
  }
}
