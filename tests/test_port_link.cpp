// Unit tests for EgressPort serialization/propagation (src/net/port.hpp).
#include <gtest/gtest.h>

#include <vector>

#include "net/port.hpp"

using namespace amrt::net;
using namespace amrt::sim;
using namespace amrt::sim::literals;

namespace {

// Records every delivered packet with its arrival time.
class SinkNode final : public Node {
 public:
  SinkNode() : Node{NodeId{99}} {}
  void handle_packet(Packet&& pkt, int port) override {
    arrivals.push_back({pkt, port});
    times.push_back(now_fn ? now_fn() : TimePoint::zero());
  }
  std::vector<std::pair<Packet, int>> arrivals;
  std::vector<TimePoint> times;
  std::function<TimePoint()> now_fn;
};

Packet data_pkt(std::uint32_t seq, std::uint32_t wire = kMtuBytes) {
  Packet p;
  p.seq = seq;
  p.type = PacketType::kData;
  p.wire_bytes = wire;
  p.payload_bytes = wire - kHeaderBytes;
  return p;
}

struct PortRig {
  Scheduler sched;
  SinkNode sink;
  std::unique_ptr<EgressQueue> queue;  // the port's queue is non-owning
  EgressPort port;

  explicit PortRig(EgressPort::Config cfg, std::unique_ptr<EgressQueue> q =
                                               std::make_unique<DropTailQueue>(64))
      : queue{std::move(q)}, port{sched, cfg, *queue} {
    sink.now_fn = [this] { return sched.now(); };
    port.connect(sink, 3);
  }
};

}  // namespace

TEST(EgressPort, DeliversAfterSerializationPlusPropagation) {
  PortRig rig{{Bandwidth::gbps(10), 5_us}};
  rig.port.enqueue(data_pkt(0));
  rig.sched.run();
  ASSERT_EQ(rig.sink.arrivals.size(), 1u);
  // 1500B at 10G = 1.2us serialize + 5us propagate.
  EXPECT_EQ(rig.sink.times[0], TimePoint::zero() + 1200_ns + 5_us);
  EXPECT_EQ(rig.sink.arrivals[0].second, 3);  // ingress port number preserved
}

TEST(EgressPort, SerializesBackToBack) {
  PortRig rig{{Bandwidth::gbps(10), Duration::zero()}};
  rig.port.enqueue(data_pkt(0));
  rig.port.enqueue(data_pkt(1));
  rig.sched.run();
  ASSERT_EQ(rig.sink.times.size(), 2u);
  EXPECT_EQ(rig.sink.times[1] - rig.sink.times[0], 1200_ns);
}

TEST(EgressPort, PreservesFifoOrderAcrossLink) {
  PortRig rig{{Bandwidth::gbps(10), 2_us}};
  for (std::uint32_t i = 0; i < 10; ++i) rig.port.enqueue(data_pkt(i));
  rig.sched.run();
  ASSERT_EQ(rig.sink.arrivals.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(rig.sink.arrivals[i].first.seq, i);
}

TEST(EgressPort, CountsBytesAndPackets) {
  PortRig rig{{Bandwidth::gbps(10), Duration::zero()}};
  rig.port.enqueue(data_pkt(0));
  rig.port.enqueue(data_pkt(1, 500));
  rig.sched.run();
  EXPECT_EQ(rig.port.packets_sent(), 2u);
  EXPECT_EQ(rig.port.bytes_sent(), 2000u);
}

TEST(EgressPort, BusyTimeAccumulatesSerialization) {
  PortRig rig{{Bandwidth::gbps(10), 10_us}};
  rig.port.enqueue(data_pkt(0));
  rig.port.enqueue(data_pkt(1));
  rig.sched.run();
  EXPECT_EQ(rig.port.busy_time(), 2400_ns);  // propagation is not busy time
}

TEST(EgressPort, DropsSurfaceInQueueStats) {
  PortRig rig{{Bandwidth::gbps(10), Duration::zero()},
              std::make_unique<DropTailQueue>(1)};
  // While the first packet serializes, the 2nd occupies the single slot and
  // the rest drop.
  for (std::uint32_t i = 0; i < 5; ++i) rig.port.enqueue(data_pkt(i));
  rig.sched.run();
  EXPECT_GE(rig.port.queue().stats().dropped, 3u);
  EXPECT_LE(rig.sink.arrivals.size(), 2u);
}

TEST(EgressPort, MarkerSeesIdleGapState) {
  struct Probe final : DequeueMarker {
    std::vector<Duration> gaps;
    void on_dequeue(Packet&, TimePoint tx_start, TimePoint last_tx_end, Bandwidth) override {
      gaps.push_back(tx_start - last_tx_end);
    }
  };
  PortRig rig{{Bandwidth::gbps(10), Duration::zero()}};
  auto probe = std::make_unique<Probe>();
  auto* probe_ptr = probe.get();
  rig.port.add_marker(std::move(probe));

  rig.port.enqueue(data_pkt(0));
  rig.sched.run();  // first tx ends at 1.2us; the clock now reads 1.2us
  rig.sched.after(10_us, [&] { rig.port.enqueue(data_pkt(1)); });
  rig.sched.run();
  ASSERT_EQ(probe_ptr->gaps.size(), 2u);
  EXPECT_EQ(probe_ptr->gaps[0], Duration::zero());  // first packet, t=0
  // Second packet starts at 11.2us; previous tx ended at 1.2us: 10us idle.
  EXPECT_EQ(probe_ptr->gaps[1], 10_us);
}

TEST(EgressPort, JitterBoundsInterPacketSpacing) {
  EgressPort::Config cfg{Bandwidth::gbps(10), Duration::zero()};
  cfg.tx_jitter = 150_ns;
  cfg.jitter_seed = 7;
  PortRig rig{cfg};
  for (std::uint32_t i = 0; i < 50; ++i) rig.port.enqueue(data_pkt(i));
  rig.sched.run();
  ASSERT_EQ(rig.sink.times.size(), 50u);
  bool saw_jitter = false;
  for (std::size_t i = 1; i < rig.sink.times.size(); ++i) {
    const auto gap = rig.sink.times[i] - rig.sink.times[i - 1];
    EXPECT_GE(gap, 1200_ns);
    EXPECT_LE(gap, 1200_ns + 150_ns);
    saw_jitter = saw_jitter || gap > 1200_ns;
  }
  EXPECT_TRUE(saw_jitter);
}

TEST(EgressPort, InvalidConfigRejected) {
  Scheduler sched;
  DropTailQueue q{4};
  EXPECT_THROW(EgressPort(sched, {Bandwidth::bps(0), Duration::zero()}, q),
               std::invalid_argument);
}

TEST(EgressPort, ControlPreemptsQueuedData) {
  PortRig rig{{Bandwidth::gbps(10), Duration::zero()}};
  rig.port.enqueue(data_pkt(0));  // starts transmitting immediately
  rig.port.enqueue(data_pkt(1));
  Packet g;
  g.type = PacketType::kGrant;
  g.wire_bytes = kCtrlBytes;
  g.seq = 42;
  rig.port.enqueue(std::move(g));
  rig.sched.run();
  ASSERT_EQ(rig.sink.arrivals.size(), 3u);
  EXPECT_EQ(rig.sink.arrivals[0].first.seq, 0u);  // already on the wire
  EXPECT_EQ(rig.sink.arrivals[1].first.seq, 42u); // grant jumps queued data
  EXPECT_EQ(rig.sink.arrivals[2].first.seq, 1u);
}
