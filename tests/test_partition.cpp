// Tests for the partition map and sharded-execution plumbing
// (net/partition.hpp, sim/shard.hpp): every node and port lands in exactly
// one shard, pod co-location and core round-robin hold on the fat-tree,
// cross flags sit only on inter-shard links, the lookahead matches the
// hand-computed cross-link latency floor, mailbox injection order is
// deterministic, and the per-shard seed derivation is pinned.
#include <gtest/gtest.h>

#include <vector>

#include "core/factory.hpp"
#include "net/partition.hpp"
#include "net/topology.hpp"
#include "sim/shard.hpp"

using namespace amrt;

namespace {

constexpr auto kDelay = sim::Duration::microseconds(5);
const auto kRate = sim::Bandwidth::gbps(10);

net::FatTree make_fabric(net::Network& network, int k) {
  net::FatTreeConfig cfg;
  cfg.k = k;
  cfg.link_rate = kRate;
  cfg.link_delay = kDelay;
  cfg.queue_factory = core::make_queue_factory(transport::Protocol::kAmrt);
  cfg.marker_factory = core::make_marker_factory(transport::Protocol::kAmrt);
  return net::build_fat_tree(network, cfg);
}

}  // namespace

TEST(Partition, CoversEveryNodeAndPortExactlyOnce) {
  for (const unsigned n : {2u, 3u, 4u}) {
    sim::Simulation sim;
    net::Network network{sim};
    const auto topo = make_fabric(network, 4);
    const auto part = net::partition_fat_tree(network, topo, n);

    ASSERT_EQ(part.n_shards, n);
    // One shard per node, all in range. make_partition itself throws on a
    // port claimed twice or claimed never, so a successful build plus a full
    // in-range map is the exactly-once property.
    ASSERT_EQ(part.node_shard.size(), network.host_count() + network.switch_count());
    for (const auto s : part.node_shard) EXPECT_LT(s, n);
    ASSERT_EQ(part.port_shard.size(), network.port_count());
    ASSERT_EQ(part.port_cross.size(), network.port_count());
    for (const auto s : part.port_shard) EXPECT_LT(s, n);

    // Each port's shard is its owning node's shard.
    for (const net::Host& h : network.hosts()) {
      EXPECT_EQ(part.port_shard[static_cast<std::size_t>(h.nic_id())], part.shard_of(h.id()));
    }
    for (const net::Switch& sw : network.switches()) {
      for (int i = 0; i < sw.port_count(); ++i) {
        EXPECT_EQ(part.port_shard[static_cast<std::size_t>(sw.port_id(i))],
                  part.shard_of(sw.id()));
      }
    }
  }
}

TEST(Partition, FatTreePinsPodsTogetherAndRoundRobinsCores) {
  const int k = 4;
  const int half = k / 2;
  const unsigned n = 3;  // does not divide the pod count: exercises the wrap
  sim::Simulation sim;
  net::Network network{sim};
  const auto topo = make_fabric(network, k);
  const auto part = net::partition_fat_tree(network, topo, n);

  for (std::size_t i = 0; i < topo.hosts.size(); ++i) {
    const auto pod = i / static_cast<std::size_t>(half * half);
    EXPECT_EQ(part.shard_of(topo.hosts[i]->id()), pod % n);
  }
  for (std::size_t i = 0; i < topo.edges.size(); ++i) {
    const auto pod = i / static_cast<std::size_t>(half);
    EXPECT_EQ(part.shard_of(topo.edges[i]->id()), pod % n);
    EXPECT_EQ(part.shard_of(topo.aggs[i]->id()), pod % n);
  }
  for (std::size_t i = 0; i < topo.cores.size(); ++i) {
    EXPECT_EQ(part.shard_of(topo.cores[i]->id()), i % n);
  }
}

TEST(Partition, CrossFlagsOnlyOnInterShardLinks) {
  sim::Simulation sim;
  net::Network network{sim};
  const auto topo = make_fabric(network, 4);
  const auto part = net::partition_fat_tree(network, topo, 2);

  // With pods pinned whole, every host<->edge and edge<->agg link is
  // intra-shard; only agg<->core links can cross, and only when the pod's
  // shard differs from the core's.
  std::size_t cross_seen = 0;
  for (std::size_t p = 0; p < network.port_count(); ++p) {
    const net::EgressPort& port = network.port_at(static_cast<net::PortId>(p));
    const bool crosses = part.shard_of(port.peer()) != part.port_shard[p];
    EXPECT_EQ(part.port_cross[p] != 0, crosses);
    cross_seen += part.port_cross[p];
  }
  EXPECT_EQ(cross_seen, part.cross_ports);
  // k=4, n=2: pods 0,2 -> shard 0, pods 1,3 -> shard 1; cores 0,2 -> shard
  // 0, cores 1,3 -> shard 1. Every pod has 4 agg-up links, half of them
  // cross, in both directions: 4 pods * 2 * 2 = 16 cross ports.
  EXPECT_EQ(part.cross_ports, 16u);
}

TEST(Partition, LookaheadIsMinCrossLinkLatency) {
  sim::Simulation sim;
  net::Network network{sim};
  const auto topo = make_fabric(network, 4);
  const auto part = net::partition_fat_tree(network, topo, 2);

  // Uniform links: lookahead = propagation + serialization of the smallest
  // frame (a 40-byte header) at line rate. 5us + 40B@10Gbps(32ns) = 5032ns.
  const auto expected = kDelay + kRate.tx_time(net::kHeaderBytes);
  EXPECT_EQ(part.lookahead, expected);
  EXPECT_EQ(part.lookahead.ns(), 5032);
}

TEST(Partition, SingleShardHasNoCrossPortsAndInfiniteLookahead) {
  sim::Simulation sim;
  net::Network network{sim};
  const auto topo = make_fabric(network, 4);
  const auto part = net::partition_fat_tree(network, topo, 1);
  EXPECT_EQ(part.cross_ports, 0u);
  EXPECT_EQ(part.lookahead, sim::Duration::max());
}

TEST(ShardMailbox, InjectionOrderIsByTimestampThenPushOrder) {
  net::ShardMailbox box;
  auto push = [&box](std::int64_t t, net::FlowId tag) {
    net::Packet p;
    p.flow = tag;
    box.push(t, net::NodeId{0}, 0, std::move(p));
  };
  // Out of order, with a three-way tie at t=50.
  push(200, 1);
  push(50, 2);
  push(50, 3);
  push(100, 4);
  push(50, 5);
  push(10, 6);

  box.sort_for_injection();
  const auto& msgs = box.msgs();
  ASSERT_EQ(msgs.size(), 6u);
  const std::vector<std::int64_t> want_t = {10, 50, 50, 50, 100, 200};
  const std::vector<net::FlowId> want_tag = {6, 2, 3, 5, 4, 1};  // ties keep push order
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(msgs[i].deliver_ns, want_t[i]) << "slot " << i;
    EXPECT_EQ(msgs[i].pkt.flow, want_tag[i]) << "slot " << i;
  }
}

TEST(ShardGroup, MasterCarriesTheSeedAndDerivationIsPinned) {
  // Shard 0 must replay exactly like a serial Simulation with the same seed.
  EXPECT_EQ(sim::ShardGroup::derive_seed(42, 0), 42u);
  EXPECT_EQ(sim::ShardGroup::derive_seed(7, 0), 7u);
  // Pinned splitmix64 outputs: a silent change to the derivation would
  // silently change every fixed-shard-count reproduction.
  EXPECT_EQ(sim::ShardGroup::derive_seed(42, 1), 0x28efe333b266f103ULL);
  EXPECT_EQ(sim::ShardGroup::derive_seed(42, 2), 0x47526757130f9f52ULL);
  EXPECT_EQ(sim::ShardGroup::derive_seed(42, 3), 0x581ce1ff0e4ae394ULL);

  // The master's RNG stream is the serial stream.
  sim::ShardGroup group{42, 4};
  sim::Simulation serial{42};
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(group.master().rng().uniform_int(0, 1'000'000),
              serial.rng().uniform_int(0, 1'000'000));
  }
}
