// Unit tests for packet layout helpers (src/net/packet.hpp).
#include <gtest/gtest.h>

#include "net/packet.hpp"

using namespace amrt::net;

TEST(Packet, PacketsForBytesRoundsUp) {
  EXPECT_EQ(packets_for_bytes(0), 0u);
  EXPECT_EQ(packets_for_bytes(1), 1u);
  EXPECT_EQ(packets_for_bytes(kMssBytes), 1u);
  EXPECT_EQ(packets_for_bytes(kMssBytes + 1), 2u);
  EXPECT_EQ(packets_for_bytes(10 * kMssBytes), 10u);
}

TEST(Packet, PayloadOfSeqFullPackets) {
  const std::uint64_t total = 3 * kMssBytes;
  EXPECT_EQ(payload_of_seq(total, 0), kMssBytes);
  EXPECT_EQ(payload_of_seq(total, 2), kMssBytes);
}

TEST(Packet, PayloadOfSeqShortTail) {
  const std::uint64_t total = 2 * kMssBytes + 100;
  EXPECT_EQ(payload_of_seq(total, 1), kMssBytes);
  EXPECT_EQ(payload_of_seq(total, 2), 100u);
  EXPECT_EQ(payload_of_seq(total, 3), 0u);  // past the end
}

TEST(Packet, PayloadsSumToFlowSize) {
  for (std::uint64_t total : {1ull, 1460ull, 1461ull, 99'999ull, 1'000'000ull}) {
    std::uint64_t sum = 0;
    for (std::uint32_t s = 0; s < packets_for_bytes(total); ++s) sum += payload_of_seq(total, s);
    EXPECT_EQ(sum, total) << total;
  }
}

TEST(Packet, WireConstantsAreEthernet) {
  EXPECT_EQ(kMtuBytes, 1500u);
  EXPECT_EQ(kMssBytes + kHeaderBytes, kMtuBytes);
  EXPECT_EQ(kCtrlBytes, 64u);
}

TEST(Packet, ControlClassification) {
  Packet p;
  p.type = PacketType::kData;
  EXPECT_FALSE(p.is_control());
  p.trimmed = true;
  EXPECT_TRUE(p.is_control());  // trimmed headers ride the control band
  p.trimmed = false;
  for (auto t : {PacketType::kRts, PacketType::kGrant, PacketType::kDone}) {
    p.type = t;
    EXPECT_TRUE(p.is_control());
  }
}

TEST(Packet, DefaultsAreSane) {
  Packet p;
  EXPECT_FALSE(p.ce);
  EXPECT_FALSE(p.ecn_capable);
  EXPECT_EQ(p.allowance, 1);
  EXPECT_EQ(p.request_seq, -1);
  EXPECT_EQ(p.priority, 0);
}

TEST(Packet, NodeIdComparable) {
  EXPECT_EQ(NodeId{3}, NodeId{3});
  EXPECT_LT(NodeId{2}, NodeId{3});
}

TEST(Packet, StrMentionsTypeAndFlow) {
  Packet p;
  p.flow = 42;
  p.type = PacketType::kGrant;
  const auto s = p.str();
  EXPECT_NE(s.find("GRANT"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}
